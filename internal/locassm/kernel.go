package locassm

import (
	"mhm2sim/internal/dna"
	"mhm2sim/internal/gpuht"
	"mhm2sim/internal/simt"
)

// batchDev holds the device base addresses of one staged batch's arenas.
type batchDev struct {
	seqBase  simt.Ptr
	qualBase simt.Ptr
	tables   simt.Ptr
	visited  simt.Ptr
	walks    simt.Ptr
	outs     simt.Ptr
}

// kernelOut is the per-item output record layout: extLen u32 @0, state u8
// @4, iters u8 @5 (16-byte stride).
const outStride = 16

// walkScratch is the lane-local offset of the walk's per-thread sequence
// mirror (below it sits the hash-staging scratch used by gpuht).
const walkScratch = 64

// localBytesPerLane sizes each lane's private local memory: hash staging
// plus the walk mirror.
func localBytesPerLane(cfg *Config) int {
	return walkScratch + cfg.MaxMer + cfg.MaxWalkLen + 16
}

// extensionKernelV2 returns the per-warp kernel body for a batch of the
// warp-per-table kernel (§3.3, Fig 5): warp w.ID owns item w.ID and runs
// the full §2.3 loop — clear tables, build the k-mer table from the
// candidate reads warp-cooperatively (Algorithm 1), mer-walk on lane 0
// (Algorithm 2), broadcast the walk state to the warp, shift k, repeat.
//
// A table-full or non-convergence fault aborts the warp's item and lands
// in errs[w.ID] — a per-warp slot, so the sink is race-free — for the
// driver to pick up after the launch and re-split the batch.
func extensionKernelV2(plan *batchPlan, dev batchDev, cfg *Config, errs []error) func(w *simt.Warp) {
	return func(w *simt.Warp) {
		p := plan.items[w.ID]
		tailLen := len(p.item.tail)
		walkBase := dev.walks + simt.Ptr(p.walkOff)
		outBase := dev.outs + simt.Ptr(p.outOff)

		mer := cfg.StartMer
		if mer > tailLen {
			mer = tailLen
		}
		lane0 := simt.LaneMask(0)
		if mer < cfg.MinMer {
			// Write a complete zero record: the arena may hold stale bytes
			// from an earlier batch.
			var a, v simt.Vec
			a[0] = uint64(outBase)
			w.StoreGlobal(lane0, &a, 4, &v)
			a[0] = uint64(outBase) + 4
			w.StoreGlobal(lane0, &a, 2, &v)
			return
		}

		extLen := 0
		shift := 0
		state := WalkDeadEnd
		iters := 0
		for iter := 0; iter < cfg.MaxIters; iter++ {
			iters++
			table := gpuht.Table{
				Base:     dev.tables + simt.Ptr(p.tableOff),
				Capacity: uint64(p.tableSlots),
				SeqBase:  dev.seqBase,
				K:        mer,
			}
			vis := gpuht.Visited{
				Base:     dev.visited + simt.Ptr(p.visitedOff),
				Capacity: uint64(p.visitedSlots),
				BufBase:  walkBase,
				K:        mer,
			}
			gpuht.ClearEntriesWarp(w, table.Base, p.tableSlots)
			gpuht.ClearVisitedWarp(w, vis.Base, p.visitedSlots)

			if err := buildTableV2(w, table, p, dev, cfg); err != nil {
				errs[w.ID] = err
				return
			}
			w.SyncWarp(simt.FullMask)

			var werr error
			state, werr = walkLane0(w, table, vis, walkBase, tailLen, &extLen, mer, cfg)
			if werr != nil {
				errs[w.ID] = werr
				return
			}

			// Lane 0 broadcasts the walk state so the warp agrees on
			// whether to rebuild at a shifted k (§3.4).
			var stVec simt.Vec
			stVec[0] = uint64(state)
			w.Shfl(simt.FullMask, &stVec, 0)
			w.Exec(simt.ICtrl, simt.FullMask)

			next, nextShift, done := nextMer(cfg, mer, shift, state)
			if done || next > tailLen+extLen {
				break
			}
			mer, shift = next, nextShift
		}

		// Lane 0 writes the output record.
		var a, v simt.Vec
		a[0] = uint64(outBase)
		v[0] = uint64(extLen)
		w.StoreGlobal(lane0, &a, 4, &v)
		a[0] = uint64(outBase) + 4
		v[0] = uint64(state)
		w.StoreGlobal(lane0, &a, 1, &v)
		a[0] = uint64(outBase) + 5
		v[0] = uint64(iters)
		w.StoreGlobal(lane0, &a, 1, &v)
	}
}

// buildTableV2 implements Algorithm 1 warp-cooperatively: the warp's lanes
// map to contiguous k-mers of each candidate read (Fig 7) so the key
// gathers coalesce, and all 32 threads participate in table construction
// (Fig 5).
func buildTableV2(w *simt.Warp, table gpuht.Table, p *itemPlan, dev batchDev, cfg *Config) error {
	// Per-chunk loop bookkeeping runs under the full mask regardless of the
	// chunk's active lanes, so it batches into one ExecN per call.
	k := table.K
	chunks := 0
	for ri := range p.item.reads {
		rlen := len(p.item.reads[ri].Seq)
		nk := rlen - k + 1
		if nk <= 0 {
			continue
		}
		readOff := uint64(p.readOffs[ri])
		for start := 0; start < nk; start += simt.WarpSize {
			var mask simt.Mask
			var keyOffs simt.Vec
			for lane := 0; lane < simt.WarpSize && start+lane < nk; lane++ {
				mask |= simt.LaneMask(lane)
				keyOffs[lane] = readOff + uint64(start+lane)
			}
			extBases, hiq := loadExtEvidence(w, mask, &keyOffs, k, rlen, readOff, dev, cfg)
			if err := table.InsertBatch(w, mask, &keyOffs, &extBases, hiq); err != nil {
				w.ExecN(simt.ICtrl, simt.FullMask, chunks)
				return err
			}
			chunks++
		}
	}
	w.ExecN(simt.ICtrl, simt.FullMask, chunks)
	return nil
}

// loadExtEvidence loads, for each active lane's k-mer, the following base
// and its quality from the device arenas, returning the 2-bit extension
// codes (NoExt for read-suffix k-mers or ambiguous bases) and the
// high-quality lane mask.
func loadExtEvidence(w *simt.Warp, mask simt.Mask, keyOffs *simt.Vec, k, rlen int, readOff uint64, dev batchDev, cfg *Config) (simt.Vec, simt.Mask) {
	extBases := simt.Splat(uint64(gpuht.NoExt))
	var hiq simt.Mask

	var hasExt simt.Mask
	var seqAddrs, qualAddrs simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		pos := keyOffs[lane] - readOff // k-mer offset within the read
		if int(pos)+k < rlen {
			hasExt |= simt.LaneMask(lane)
			seqAddrs[lane] = uint64(dev.seqBase) + keyOffs[lane] + uint64(k)
			qualAddrs[lane] = uint64(dev.qualBase) + keyOffs[lane] + uint64(k)
		}
	}
	w.Exec(simt.IInt, mask) // bounds computation
	if hasExt == 0 {
		return extBases, hiq
	}
	baseBytes := w.LoadGlobal(hasExt, &seqAddrs, 1)
	qualBytes := w.LoadGlobal(hasExt, &qualAddrs, 1)
	w.ExecN(simt.IInt, hasExt, 2) // code conversion + quality compare
	for lane := 0; lane < simt.WarpSize; lane++ {
		if !hasExt.Has(lane) {
			continue
		}
		c, ok := dna.Code(byte(baseBytes[lane]))
		if !ok {
			continue
		}
		extBases[lane] = uint64(c)
		if dna.QualScore(byte(qualBytes[lane])) >= cfg.QualCutoff {
			hiq |= simt.LaneMask(lane)
		}
	}
	return extBases, hiq
}

// walkLane0 is Algorithm 2 on the device: lane 0 walks while the rest of
// the warp is predicated off (Fig 5), appending accepted bases to the walk
// buffer in global memory. It mirrors walkCPU step for step.
func walkLane0(w *simt.Warp, table gpuht.Table, vis gpuht.Visited, walkBase simt.Ptr, tailLen int, extLen *int, mer int, cfg *Config) (WalkState, error) {
	// Per-step accounting (one ICtrl at the loop head, the 8-op extension
	// decision after each lookup) is batched and flushed at the single exit
	// — identical totals, one stats update per walk instead of per step.
	lane0 := simt.LaneMask(0)
	steps, lookups := 0, 0
	state, rerr := WalkDeadEnd, error(nil)
loop:
	for {
		steps++
		if *extLen >= cfg.MaxWalkLen {
			state = WalkMaxLen
			break
		}
		curOff := uint32(tailLen + *extLen - mer)
		seen, err := vis.InsertLane(w, 0, curOff)
		if err != nil {
			rerr = err
			break
		}
		if seen {
			state = WalkLoop
			break
		}
		// The walk keeps its growing sequence in a per-thread buffer; the
		// current mer is read from there each step (local-memory traffic,
		// §4.2) before the global-table probes.
		for b := 0; b < (mer+7)/8; b++ {
			off := simt.Splat(uint64(walkScratch + int(curOff) + 8*b))
			w.LoadLocal(lane0, &off, 8)
		}
		e, ok := table.LookupLane(w, 0, uint64(walkBase)+uint64(curOff))
		lookups++ // extension decision arithmetic, 8 ops
		if !ok {
			break
		}
		base, st := DecideExt(e, cfg.MinViableScore)
		switch st {
		case StepEnd:
			break loop
		case StepFork:
			state = WalkFork
			break loop
		}
		var a, v simt.Vec
		a[0] = uint64(walkBase) + uint64(tailLen+*extLen)
		v[0] = uint64(dna.Alphabet[base])
		w.StoreGlobal(lane0, &a, 1, &v)
		lo := simt.Splat(uint64(walkScratch + tailLen + *extLen))
		w.StoreLocal(lane0, &lo, 1, &v)
		*extLen++
	}
	w.ExecN(simt.ICtrl, lane0, steps)
	w.ExecN(simt.IInt, lane0, 8*lookups)
	return state, rerr
}
