package locassm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// cloneCtgs deep-copies a workload so one engine's run cannot leak state
// into the next (engines must not mutate ctgs, and the test verifies it).
func cloneCtgs(ctgs []*CtgWithReads) []*CtgWithReads {
	out := make([]*CtgWithReads, len(ctgs))
	for i, c := range ctgs {
		cc := *c
		cc.Seq = append([]byte(nil), c.Seq...)
		out[i] = &cc
	}
	return out
}

// TestEngineRegistryNames: the built-in engines are registered.
func TestEngineRegistryNames(t *testing.T) {
	names := strings.Join(EngineNames(), ",")
	for _, want := range []string{EngineCPU, EngineGPU, EngineMultiGPU} {
		if !strings.Contains(names, want) {
			t.Errorf("engine %q not registered (have %s)", want, names)
		}
	}
}

func TestNewEngineUnknown(t *testing.T) {
	if _, err := NewEngine(EngineSpec{Name: "teleport"}); err == nil {
		t.Fatal("unknown engine accepted")
	} else if !strings.Contains(err.Error(), "teleport") {
		t.Errorf("error does not name the engine: %v", err)
	}
}

// TestNewEngineAutoIsCPU: "" and "auto" resolve to the host engine.
func TestNewEngineAutoIsCPU(t *testing.T) {
	for _, name := range []string{"", EngineAuto} {
		eng, err := NewEngine(EngineSpec{Name: name, Config: testConfig()})
		if err != nil {
			t.Fatalf("NewEngine(%q): %v", name, err)
		}
		if eng.Name() != EngineCPU {
			t.Errorf("NewEngine(%q).Name() = %q, want cpu", name, eng.Name())
		}
	}
}

// TestNewEngineInstanceWins: a pre-built Instance bypasses the registry.
func TestNewEngineInstanceWins(t *testing.T) {
	inst, err := NewEngine(EngineSpec{Name: EngineCPU, Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewEngine(EngineSpec{Name: "not-registered", Instance: inst})
	if err != nil || got != inst {
		t.Fatalf("Instance not returned as-is (err %v)", err)
	}
}

// TestRegisterEngineDuplicatePanics: a name collision is a programming
// error, caught loudly at init time.
func TestRegisterEngineDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	RegisterEngine(EngineCPU, newCPUEngine)
}

// TestEnginesBitIdentical is the registry-level parity check: cpu, gpu,
// and multigpu engines produce bit-identical Results on a mixed random
// workload, without mutating their input, and fill the Stats fields their
// substrate implies.
func TestEnginesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randomWorkload(rng, 40)

	specs := map[string]EngineSpec{
		EngineCPU: {Name: EngineCPU, Config: testConfig(), Workers: 3},
		EngineGPU: {Name: EngineGPU, Config: testConfig(),
			GPU: GPUConfig{WarpPerTable: true}, Device: testDev()},
		EngineMultiGPU: {Name: EngineMultiGPU, Config: testConfig(),
			GPU: GPUConfig{WarpPerTable: true}, GPUs: 3},
	}

	results := map[string][]Result{}
	stats := map[string]Stats{}
	for name, spec := range specs {
		eng, err := NewEngine(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if eng.Name() != name {
			t.Errorf("%s: Name() = %q", name, eng.Name())
		}
		ctgs := cloneCtgs(base)
		res, st, err := eng.Assemble(21, ctgs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res) != len(base) {
			t.Fatalf("%s: %d results for %d contigs", name, len(res), len(base))
		}
		for i := range ctgs {
			if !bytes.Equal(ctgs[i].Seq, base[i].Seq) {
				t.Fatalf("%s: engine mutated ctgs[%d].Seq", name, i)
			}
		}
		results[name] = res
		stats[name] = st
	}

	ref := results[EngineCPU]
	for name, res := range results {
		for i := range ref {
			if !bytes.Equal(ref[i].RightExt, res[i].RightExt) ||
				!bytes.Equal(ref[i].LeftExt, res[i].LeftExt) ||
				ref[i].Iters != res[i].Iters {
				t.Fatalf("%s: result %d differs from cpu engine", name, i)
			}
		}
	}

	if st := stats[EngineCPU]; st.Counts.KmersInserted == 0 || st.Busy <= 0 || len(st.Kernels) != 0 {
		t.Errorf("cpu stats wrong shape: %+v", st)
	}
	for _, name := range []string{EngineGPU, EngineMultiGPU} {
		if st := stats[name]; len(st.Kernels) == 0 || st.KernelTime <= 0 || st.Busy <= 0 {
			t.Errorf("%s stats wrong shape: kernels=%d kernelTime=%v busy=%v",
				name, len(st.Kernels), st.KernelTime, st.Busy)
		}
	}
	// Devices overlap on a node: busy time is the slowest device, which
	// cannot exceed the serialized kernel+transfer total.
	if st := stats[EngineMultiGPU]; st.Busy > st.KernelTime+st.TransferTime {
		t.Errorf("multigpu busy %v exceeds serialized total %v",
			st.Busy, st.KernelTime+st.TransferTime)
	}
}

// TestStatsAdd: accumulation covers every field.
func TestStatsAdd(t *testing.T) {
	var s Stats
	s.Add(Stats{Counts: WorkCounts{KmersInserted: 2}, KernelTime: 3, TransferTime: 4,
		Busy: 5, Resplits: 6, Batches: 7})
	s.Add(Stats{Counts: WorkCounts{KmersInserted: 1}, KernelTime: 1, TransferTime: 1,
		Busy: 1, Resplits: 1, Batches: 1})
	if s.Counts.KmersInserted != 3 || s.KernelTime != 4 || s.TransferTime != 5 ||
		s.Busy != 6 || s.Resplits != 7 || s.Batches != 8 {
		t.Errorf("Stats.Add wrong: %+v", s)
	}
}
