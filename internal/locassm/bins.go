package locassm

// Binning (§3.1): contigs are sorted into three bins by candidate-read
// count before offloading, so that warps in one kernel launch have
// comparable work and fast contigs don't stall behind slow ones.
//
//	bin 1: zero reads        — returned unchanged, never offloaded
//	bin 2: 1..SmallLimit-1   — small kernel
//	bin 3: ≥ SmallLimit      — large kernel, launched first and overlapped
//	                           with CPU work on bin 2 (§4.3)
const DefaultSmallLimit = 10

// Bins holds the three §3.1 bins.
type Bins struct {
	Zero  []*CtgWithReads // bin 1
	Small []*CtgWithReads // bin 2
	Large []*CtgWithReads // bin 3
}

// MakeBins splits contigs by candidate-read count. smallLimit ≤ 0 uses
// DefaultSmallLimit.
func MakeBins(ctgs []*CtgWithReads, smallLimit int) Bins {
	if smallLimit <= 0 {
		smallLimit = DefaultSmallLimit
	}
	var b Bins
	for _, c := range ctgs {
		switch n := c.NumReads(); {
		case n == 0:
			b.Zero = append(b.Zero, c)
		case n < smallLimit:
			b.Small = append(b.Small, c)
		default:
			b.Large = append(b.Large, c)
		}
	}
	return b
}

// Total returns the contig count across bins.
func (b *Bins) Total() int { return len(b.Zero) + len(b.Small) + len(b.Large) }

// Fractions returns each bin's share of the total (0 when empty), the
// quantities plotted in Fig 3.
func (b *Bins) Fractions() (zero, small, large float64) {
	t := float64(b.Total())
	if t == 0 {
		return 0, 0, 0
	}
	return float64(len(b.Zero)) / t, float64(len(b.Small)) / t, float64(len(b.Large)) / t
}
