// Package locassm implements the paper's primary contribution: the local
// assembly module of MetaHipMer (§2.3), in two interchangeable forms —
// a CPU reference implementation of Algorithms 1 and 2 with the dynamic
// k up/down-shifting state machine, and a GPU implementation on the simt
// device using warp-local hash tables (v1: one thread per table, v2: one
// warp per table), contig binning (§3.1), and the flat-memory batch planner
// (§3.2).
//
// The two implementations compute bit-identical extensions: both share
// DecideExt and the shift state machine, both count extension evidence the
// same way, and both bound walks identically. That equivalence is the
// package's central correctness property and is enforced by tests.
package locassm

import (
	"fmt"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/gpuht"
)

// CtgWithReads is one unit of local-assembly work: a contig and the
// candidate reads that aligned to each of its ends, oriented along the
// contig (exactly what MetaHipMer's alignment stage hands to local
// assembly).
type CtgWithReads struct {
	ID    int64
	Seq   []byte
	Depth float64
	// LeftReads align over the left (5') contig end; RightReads over the
	// right (3') end. Both are stored in contig orientation.
	LeftReads  []dna.Read
	RightReads []dna.Read
}

// NumReads returns the total candidate reads for the contig (the §3.1
// binning key).
func (c *CtgWithReads) NumReads() int { return len(c.LeftReads) + len(c.RightReads) }

// Result is the outcome of locally assembling one contig.
type Result struct {
	ID int64
	// LeftExt and RightExt are the bases added beyond each end, in contig
	// orientation (LeftExt immediately precedes the original sequence).
	LeftExt  []byte
	RightExt []byte
	// LeftState/RightState are the terminal walk states.
	LeftState  WalkState
	RightState WalkState
	// Iters counts hash-table (re)builds across both sides.
	Iters int
}

// ExtendedSeq assembles the final contig sequence.
func (r *Result) ExtendedSeq(orig []byte) []byte {
	out := make([]byte, 0, len(r.LeftExt)+len(orig)+len(r.RightExt))
	out = append(out, r.LeftExt...)
	out = append(out, orig...)
	return append(out, r.RightExt...)
}

// Config holds the local-assembly parameters. The mer-size ladder is the
// §2.3 dynamic-k mechanism: walks start at StartMer; a fork up-shifts by
// MerStep, a dead end down-shifts, and the process terminates on a fork
// after a down-shift or a dead end after an up-shift.
type Config struct {
	MinMer   int // smallest mer size (21 — "shortest k-mer length for reasonable accuracy", §3.2)
	MaxMer   int // largest mer size
	StartMer int // first mer size tried
	MerStep  int // up/down-shift amount

	MaxWalkLen int // walk step cap ("up to 300 steps", §4.2)
	MaxIters   int // cap on rebuilds per side (safety net)

	// QualCutoff splits extension evidence into high/low quality counts.
	QualCutoff int
	// MinViableScore is the minimum weighted score (2·hi + lo) for a base
	// to count as a viable extension.
	MinViableScore int

	// MaxReadLen bounds candidate read length (paper: short reads ≤ 300).
	MaxReadLen int
}

// DefaultConfig mirrors the MetaHipMer local-assembly settings at our
// scale.
func DefaultConfig() Config {
	return Config{
		MinMer:         21,
		MaxMer:         33,
		StartMer:       27,
		MerStep:        4,
		MaxWalkLen:     300,
		MaxIters:       10,
		QualCutoff:     dna.QualCutoff,
		MinViableScore: 2,
		MaxReadLen:     300,
	}
}

// Validate checks config sanity.
func (c *Config) Validate() error {
	if c.MinMer < 4 || c.MaxMer < c.MinMer || c.MaxMer > 128 {
		return fmt.Errorf("locassm: bad mer range [%d,%d]", c.MinMer, c.MaxMer)
	}
	if c.StartMer < c.MinMer || c.StartMer > c.MaxMer {
		return fmt.Errorf("locassm: start mer %d outside [%d,%d]", c.StartMer, c.MinMer, c.MaxMer)
	}
	if c.MerStep < 1 {
		return fmt.Errorf("locassm: mer step %d < 1", c.MerStep)
	}
	if c.MaxWalkLen < 1 || c.MaxIters < 1 {
		return fmt.Errorf("locassm: bad walk/iteration caps")
	}
	if c.MaxReadLen < c.MaxMer || c.MaxReadLen > 300 {
		return fmt.Errorf("locassm: MaxReadLen %d outside [%d,300]", c.MaxReadLen, c.MaxMer)
	}
	return nil
}

// WalkState is the terminal condition of one mer-walk.
type WalkState byte

const (
	// WalkDeadEnd: no viable extension base (Algorithm 2's "end").
	WalkDeadEnd WalkState = iota
	// WalkFork: ambiguous extension (two viable bases).
	WalkFork
	// WalkLoop: the walk revisited a k-mer (loop_exists).
	WalkLoop
	// WalkMaxLen: the walk reached MaxWalkLen extensions.
	WalkMaxLen
)

// String names the walk state.
func (s WalkState) String() string {
	switch s {
	case WalkDeadEnd:
		return "dead-end"
	case WalkFork:
		return "fork"
	case WalkLoop:
		return "loop"
	case WalkMaxLen:
		return "max-len"
	}
	return "unknown"
}

// StepState is the per-step decision of DecideExt.
type StepState byte

const (
	StepExtend StepState = iota
	StepFork
	StepEnd
)

// DecideExt chooses the extension base from an extension object, with
// MetaHipMer-style quality-weighted voting: each base scores
// 2·(high-quality votes) + (low-quality votes).
//
//   - If no base reaches MinViableScore with at least one high-quality
//     vote, the walk hits a dead end.
//   - If a second base is viable and scores more than half the best, the
//     evidence is ambiguous: fork.
//   - Otherwise the walk extends with the best base (ties on score fork).
//
// Both the CPU reference and the GPU kernels call exactly this function,
// which is what makes their walks comparable bit-for-bit.
func DecideExt(e gpuht.Ext, minViable int) (byte, StepState) {
	var score [4]int
	for b := 0; b < 4; b++ {
		score[b] = 2*int(e.Hi[b]) + int(e.Lo[b])
	}
	best, second := 0, -1
	for b := 1; b < 4; b++ {
		if score[b] > score[best] {
			second = best
			best = b
		} else if second < 0 || score[b] > score[second] {
			second = b
		}
	}
	viable := func(b int) bool {
		return b >= 0 && e.Hi[b] >= 1 && score[b] >= minViable
	}
	if !viable(best) {
		return 0, StepEnd
	}
	if viable(second) && 2*score[second] > score[best] {
		return 0, StepFork
	}
	return byte(best), StepExtend
}

// nextMer advances the mer-size state machine after a walk. prevShift is
// -1/0/+1 for the previous shift direction. It returns the next mer size
// and shift, or done=true when the §2.3 termination condition holds.
func nextMer(cfg *Config, mer, prevShift int, state WalkState) (nextMerLen, shift int, done bool) {
	switch state {
	case WalkFork:
		if prevShift == -1 {
			return mer, prevShift, true // fork after down-shift
		}
		next := mer + cfg.MerStep
		if next > cfg.MaxMer {
			return mer, prevShift, true
		}
		return next, +1, false
	case WalkDeadEnd:
		if prevShift == +1 {
			return mer, prevShift, true // dead end after up-shift
		}
		next := mer - cfg.MerStep
		if next < cfg.MinMer {
			return mer, prevShift, true
		}
		return next, -1, false
	default:
		// Loop or max-length walks terminate the extension outright.
		return mer, prevShift, true
	}
}
