package locassm

import (
	"math/rand"
	"testing"

	"mhm2sim/internal/gpuht"
	"mhm2sim/internal/simt"
)

// Ablation benchmarks for the design choices DESIGN.md §6 calls out. Each
// reports the quantity the paper's design argument predicts.

// ablationWorkload mixes a few heavy contigs among thousands of light ones
// — the §3.1 situation where an unbinned launch makes every resident round
// as slow as its slowest warp. The light population exceeds the V100's
// resident-warp capacity (5120) so the launch takes several rounds.
func ablationWorkload(b *testing.B) []*CtgWithReads {
	b.Helper()
	rng := rand.New(rand.NewSource(777))
	randSeq := func(n int) string {
		b := make([]byte, n)
		for j := range b {
			b[j] = "ACGT"[rng.Intn(4)]
		}
		return string(b)
	}
	var ctgs []*CtgWithReads
	for i := 0; i < 11000; i++ {
		if i%500 == 0 {
			// Heavy: deep coverage extending far past the end — a long
			// serial walk with many probes (the §3.1 stragglers).
			genome := []byte(randSeq(700))
			c := &CtgWithReads{ID: int64(i), Seq: append([]byte(nil), genome[200:440]...)}
			for pos := 380; pos+60 <= 700; pos += 2 {
				c.RightReads = append(c.RightReads, readFromString(string(genome[pos:pos+60])))
			}
			ctgs = append(ctgs, c)
			continue
		}
		// Light: two short junk reads that dead-end immediately (tiny
		// tables, negligible traffic — pure occupancy).
		c := &CtgWithReads{ID: int64(i), Seq: []byte(randSeq(60))}
		c.RightReads = append(c.RightReads,
			readFromString(randSeq(24)), readFromString(randSeq(24)))
		ctgs = append(ctgs, c)
	}
	return ctgs
}

// BenchmarkAblationBinning compares the §3.1 binned schedule (separate
// kernels for bin 2 and bin 3) against offloading everything in one
// launch. The mixed launch's latency term is set by its slowest warp while
// light warps idle — binning isolates that.
func BenchmarkAblationBinning(b *testing.B) {
	ctgs := ablationWorkload(b)
	cfg := GPUConfig{Config: testConfigB(), WarpPerTable: true}

	for i := 0; i < b.N; i++ {
		// Mixed: one run over everything.
		dev := simt.NewDevice(simt.V100())
		drv, err := NewDriver(dev, cfg)
		if err != nil {
			b.Fatal(err)
		}
		mixed, err := drv.Run(ctgs)
		if err != nil {
			b.Fatal(err)
		}

		// Binned: bin 2 and bin 3 in separate launches.
		bins := MakeBins(ctgs, 0)
		dev2 := simt.NewDevice(simt.V100())
		drv2, err := NewDriver(dev2, cfg)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := drv2.Run(bins.Small)
		if err != nil {
			b.Fatal(err)
		}
		r3, err := drv2.Run(bins.Large)
		if err != nil {
			b.Fatal(err)
		}
		binned := r2.TotalTime() + r3.TotalTime()

		b.ReportMetric(float64(mixed.TotalTime().Microseconds()), "mixed-us")
		b.ReportMetric(float64(binned.Microseconds()), "binned-us")
	}
}

// BenchmarkAblationOverlap compares Fig 11's bin-3-first-with-CPU-overlap
// schedule against a fully serial GPU offload.
func BenchmarkAblationOverlap(b *testing.B) {
	ctgs := ablationWorkload(b)
	cfg := GPUConfig{Config: testConfigB(), WarpPerTable: true}
	for i := 0; i < b.N; i++ {
		dev := simt.NewDevice(simt.V100())
		drv, err := NewDriver(dev, cfg)
		if err != nil {
			b.Fatal(err)
		}
		serial, err := drv.Run(ctgs)
		if err != nil {
			b.Fatal(err)
		}
		dev2 := simt.NewDevice(simt.V100())
		drv2, err := NewDriver(dev2, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ov, err := drv2.RunOverlapped(ctgs, DefaultCPUTime(42), 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(serial.TotalTime().Microseconds()), "serial-us")
		b.ReportMetric(float64(ov.ModelTime.Microseconds()), "overlap-us")
	}
}

// BenchmarkAblationPointerKeys quantifies Fig 6: device bytes for the
// batch's hash tables with pointer-compressed keys (4-byte offsets inside
// 32-byte entries) versus storing the k-mer bytes in every entry.
func BenchmarkAblationPointerKeys(b *testing.B) {
	ctgs := ablationWorkload(b)
	cfg := testConfigB()
	items := buildSideItems(ctgs, &cfg, false)
	for i := 0; i < b.N; i++ {
		var ptrBytes, fullBytes int64
		for _, it := range items {
			p := planItem(it, &cfg)
			ptrBytes += gpuht.Bytes(p.tableSlots)
			// Full-key entries: replace the 4-byte offset with k bytes
			// (padded to 8): entry grows by pad8(k)−4... conservatively
			// pad the whole entry to alignment.
			fullEntry := int64(gpuht.EntryBytes - 4 + (cfg.MaxMer+7)/8*8)
			fullBytes += int64(p.tableSlots) * fullEntry
		}
		b.ReportMetric(float64(ptrBytes), "ptr-bytes")
		b.ReportMetric(float64(fullBytes), "full-bytes")
		b.ReportMetric(float64(fullBytes)/float64(ptrBytes), "saving-x")
	}
}

// BenchmarkAblationLoadFactor compares the §3.2 sizing policy (l·r slots,
// load factor ≤ 0.93) against exact sizing ((l−k+1)·r slots, load factor
// up to 1.0) by measuring probe work during construction.
func BenchmarkAblationLoadFactor(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	read := make([]byte, 150)
	for i := range read {
		read[i] = "ACGT"[rng.Intn(4)]
	}
	k := 21
	nk := len(read) - k + 1

	run := func(slots int) uint64 {
		cfgDev := simt.V100()
		cfgDev.GlobalMemBytes = 1 << 24
		dev := simt.NewDevice(cfgDev)
		arena, _ := dev.Malloc(int64(len(read) + 8))
		dev.WriteBytes(arena, read)
		tabBase, _ := dev.Malloc(gpuht.Bytes(slots))
		tab := gpuht.Table{Base: tabBase, Capacity: uint64(slots), SeqBase: arena, K: k}
		res, err := dev.Launch(simt.KernelConfig{Name: "lf", Warps: 1}, func(w *simt.Warp) {
			gpuht.ClearEntriesWarp(w, tabBase, slots)
			for start := 0; start < nk; start += simt.WarpSize {
				var mask simt.Mask
				var keyOffs simt.Vec
				extBases := simt.Splat(uint64(gpuht.NoExt))
				for lane := 0; lane < simt.WarpSize && start+lane < nk; lane++ {
					mask |= simt.LaneMask(lane)
					keyOffs[lane] = uint64(start + lane)
				}
				tab.InsertBatch(w, mask, &keyOffs, &extBases, 0)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.TotalWarpInstrs()
	}

	for i := 0; i < b.N; i++ {
		paper := run(gpuht.SlotsPerExtension(len(read), 1)) // l·r
		exact := run(gpuht.MaxKmers(len(read), k, 1))       // (l−k+1)·r
		b.ReportMetric(float64(paper), "lr-sized-instrs")
		b.ReportMetric(float64(exact), "exact-sized-instrs")
	}
}

// testConfigB mirrors testConfig for benchmarks.
func testConfigB() Config {
	return Config{
		MinMer: 11, MaxMer: 19, StartMer: 15, MerStep: 4,
		MaxWalkLen: 300, MaxIters: 10,
		QualCutoff: 20, MinViableScore: 2, MaxReadLen: 150,
	}
}
