package locassm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"mhm2sim/internal/simt"
)

func testDev() *simt.Device {
	cfg := simt.V100()
	cfg.GlobalMemBytes = 1 << 28 // 256 MiB logical for tests
	return simt.NewDevice(cfg)
}

func newTestDriver(t *testing.T, warpPerTable bool, budget int64) *Driver {
	t.Helper()
	d, err := NewDriver(testDev(), GPUConfig{
		Config:       testConfig(),
		WarpPerTable: warpPerTable,
		MemBudget:    budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// assertSameResults compares CPU and GPU outputs contig by contig.
func assertSameResults(t *testing.T, label string, ctgs []*CtgWithReads, cpu *CPUResult, gpu *GPUResult) {
	t.Helper()
	if len(cpu.Results) != len(gpu.Results) {
		t.Fatalf("%s: result count %d vs %d", label, len(cpu.Results), len(gpu.Results))
	}
	for i := range ctgs {
		cr, gr := &cpu.Results[i], &gpu.Results[i]
		if !bytes.Equal(cr.RightExt, gr.RightExt) {
			t.Errorf("%s: ctg %d right ext differs:\n cpu %s (%s)\n gpu %s (%s)",
				label, ctgs[i].ID, cr.RightExt, cr.RightState, gr.RightExt, gr.RightState)
		}
		if !bytes.Equal(cr.LeftExt, gr.LeftExt) {
			t.Errorf("%s: ctg %d left ext differs:\n cpu %s (%s)\n gpu %s (%s)",
				label, ctgs[i].ID, cr.LeftExt, cr.LeftState, gr.LeftExt, gr.LeftState)
		}
		if len(cr.RightExt) > 0 && cr.RightState != gr.RightState {
			t.Errorf("%s: ctg %d right state %s vs %s", label, ctgs[i].ID, cr.RightState, gr.RightState)
		}
		if len(cr.LeftExt) > 0 && cr.LeftState != gr.LeftState {
			t.Errorf("%s: ctg %d left state %s vs %s", label, ctgs[i].ID, cr.LeftState, gr.LeftState)
		}
		if cr.Iters != gr.Iters {
			t.Errorf("%s: ctg %d iters %d vs %d", label, ctgs[i].ID, cr.Iters, gr.Iters)
		}
	}
}

// randomWorkload builds a mixed workload: covered contigs, forks, repeats,
// no-read contigs, short contigs.
func randomWorkload(rng *rand.Rand, n int) []*CtgWithReads {
	var ctgs []*CtgWithReads
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0, 1, 2:
			c, _ := makeCovered(rng, int64(i), 500+rng.Intn(300), 150+rng.Intn(50),
				330+rng.Intn(60), 60+rng.Intn(40), 8+rng.Intn(10))
			ctgs = append(ctgs, c)
		case 3:
			ctgs = append(ctgs, &CtgWithReads{ID: int64(i), Seq: []byte("ACGTACGTACGTACGTACGTACGTACGT")})
		case 4:
			// Noisy low-coverage contig: a couple of random reads that may
			// or may not overlap the end.
			c, _ := makeCovered(rng, int64(i), 400, 150, 250, 50, 40)
			if len(c.RightReads) > 2 {
				c.RightReads = c.RightReads[:2]
			}
			c.LeftReads = nil
			ctgs = append(ctgs, c)
		}
	}
	return ctgs
}

func TestGPUMatchesCPUV2(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		ctgs := randomWorkload(rng, 15)
		cpu, err := RunCPU(ctgs, testConfig(), 4)
		if err != nil {
			t.Fatal(err)
		}
		gpu, err := newTestDriver(t, true, 0).Run(ctgs)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("seed %d", seed), ctgs, cpu, gpu)
	}
}

func TestGPUMatchesCPUV1(t *testing.T) {
	rng := rand.New(rand.NewSource(2000))
	ctgs := randomWorkload(rng, 10)
	cpu, err := RunCPU(ctgs, testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := newTestDriver(t, false, 0).Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "v1", ctgs, cpu, gpu)
}

func TestGPUMultiBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(3000))
	ctgs := randomWorkload(rng, 12)

	one, err := newTestDriver(t, true, 0).Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}
	// A tight budget forces several batches per side.
	small := newTestDriver(t, true, 1<<18)
	many, err := small.Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}
	if many.Batches <= one.Batches {
		t.Fatalf("expected more batches under tight budget: %d vs %d", many.Batches, one.Batches)
	}
	for i := range ctgs {
		if !bytes.Equal(one.Results[i].RightExt, many.Results[i].RightExt) ||
			!bytes.Equal(one.Results[i].LeftExt, many.Results[i].LeftExt) {
			t.Fatalf("ctg %d: batching changed the result", i)
		}
	}
}

func TestGPUBudgetTooSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(4000))
	ctgs := randomWorkload(rng, 3)
	d := newTestDriver(t, true, 1<<10) // 1 KiB: nothing fits
	if _, err := d.Run(ctgs); err == nil {
		t.Error("expected an error when one item exceeds the budget")
	}
}

func TestGPUForkAndLoopStates(t *testing.T) {
	cfg := testConfig()
	// Reuse the CPU tests' fork and loop scenarios through the GPU path.
	rng := rand.New(rand.NewSource(5))
	stem := make([]byte, 60)
	for i := range stem {
		stem[i] = "ACGT"[rng.Intn(4)]
	}
	brA := append(append([]byte(nil), stem...), []byte("AACCGGTTACGTACGTACGTAGGTTC")...)
	brC := append(append([]byte(nil), stem...), []byte("CGTTGGAACTTGGCCAATTGGCATGA")...)
	fork := &CtgWithReads{ID: 1, Seq: append([]byte(nil), stem...)}
	for pos := 20; pos+40 <= len(brA); pos += 5 {
		fork.RightReads = append(fork.RightReads, readFromString(string(brA[pos:pos+40])))
		fork.RightReads = append(fork.RightReads, readFromString(string(brC[pos:pos+40])))
	}

	repeat := bytes.Repeat([]byte("ACGGTTCAAG"), 12)
	loop := &CtgWithReads{ID: 2, Seq: repeat[:40]}
	for pos := 10; pos+50 <= len(repeat); pos += 5 {
		loop.RightReads = append(loop.RightReads, readFromString(string(repeat[pos:pos+50])))
	}

	ctgs := []*CtgWithReads{fork, loop}
	cpu, err := RunCPU(ctgs, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := newTestDriver(t, true, 0).Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "states", ctgs, cpu, gpu)
	if gpu.Results[0].RightState != WalkFork {
		t.Errorf("fork contig: state %s", gpu.Results[0].RightState)
	}
	if gpu.Results[1].RightState != WalkLoop {
		t.Errorf("loop contig: state %s", gpu.Results[1].RightState)
	}
}

func TestGPUCollectsKernelStats(t *testing.T) {
	rng := rand.New(rand.NewSource(6000))
	ctgs := randomWorkload(rng, 8)
	gpu, err := newTestDriver(t, true, 0).Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(gpu.Kernels) == 0 {
		t.Fatal("no kernel results recorded")
	}
	var warps uint64
	for _, k := range gpu.Kernels {
		warps += k.Warps
		if k.TotalWarpInstrs() == 0 {
			t.Errorf("kernel %s recorded no instructions", k.Kernel)
		}
		if k.Time <= 0 {
			t.Errorf("kernel %s has non-positive model time", k.Kernel)
		}
	}
	if warps == 0 {
		t.Error("no warps ran")
	}
	if gpu.TotalTime() <= 0 {
		t.Error("total model time not positive")
	}
	if gpu.TransferTime <= 0 {
		t.Error("transfer time not accounted")
	}
}

func TestGPUV2FewerGlobalInstrsThanV1(t *testing.T) {
	rng := rand.New(rand.NewSource(7000))
	ctgs := randomWorkload(rng, 10)
	v2, err := newTestDriver(t, true, 0).Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := newTestDriver(t, false, 0).Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}
	var g1, g2, w1, w2 uint64
	for _, k := range v1.Kernels {
		g, _ := k.MemWarpInstrs()
		g1 += g
		w1 += k.TotalWarpInstrs()
	}
	for _, k := range v2.Kernels {
		g, _ := k.MemWarpInstrs()
		g2 += g
		w2 += k.TotalWarpInstrs()
	}
	if g2 >= g1 {
		t.Errorf("v2 global-memory warp instructions %d not below v1 %d (Fig 10)", g2, g1)
	}
	if w2 >= w1 {
		t.Errorf("v2 total warp instructions %d not below v1 %d", w2, w1)
	}
	if v2.KernelTime >= v1.KernelTime {
		t.Errorf("v2 model time %v not below v1 %v", v2.KernelTime, v1.KernelTime)
	}
}

func TestDriverRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.MaxIters = 0
	if _, err := NewDriver(testDev(), GPUConfig{Config: cfg}); err == nil {
		t.Error("bad config accepted")
	}
}
