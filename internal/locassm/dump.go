package locassm

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Workload dump/load implements the paper's standalone-evaluation workflow
// (§4.1): "we used the arcticsynth dataset and processed it through the
// MetaHipMer pipeline to dump the contigs and their candidate reads that
// are input to the local assembly module. This data dump was then used to
// evaluate the performance of the GPU local-assembly kernels."

// dumpMagic guards against feeding arbitrary files to the loader.
const dumpMagic = "mhm2sim-lassm-dump-v1"

// DumpWorkload serializes a local-assembly workload.
func DumpWorkload(w io.Writer, ctgs []*CtgWithReads) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(dumpMagic); err != nil {
		return err
	}
	if err := enc.Encode(len(ctgs)); err != nil {
		return err
	}
	for _, c := range ctgs {
		if err := enc.Encode(c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadWorkload reads a workload written by DumpWorkload.
func LoadWorkload(r io.Reader) ([]*CtgWithReads, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var magic string
	if err := dec.Decode(&magic); err != nil {
		return nil, fmt.Errorf("locassm: not a workload dump: %w", err)
	}
	if magic != dumpMagic {
		return nil, fmt.Errorf("locassm: bad dump magic %q", magic)
	}
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("locassm: negative contig count %d", n)
	}
	out := make([]*CtgWithReads, 0, n)
	for i := 0; i < n; i++ {
		var c CtgWithReads
		if err := dec.Decode(&c); err != nil {
			return nil, fmt.Errorf("locassm: corrupt dump at contig %d: %w", i, err)
		}
		out = append(out, &c)
	}
	return out, nil
}

// DumpWorkloadFile writes the workload to a file (atomically via rename).
func DumpWorkloadFile(path string, ctgs []*CtgWithReads) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if err := DumpWorkload(f, ctgs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}

// LoadWorkloadFile reads a workload dump from a file.
func LoadWorkloadFile(path string) ([]*CtgWithReads, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWorkload(f)
}
