package locassm

import (
	"mhm2sim/internal/dna"
	"mhm2sim/internal/gpuht"
)

// This file preserves the original map[string]gpuht.Ext host implementation
// of Algorithms 1 and 2 verbatim as a test-only oracle. The flat-table
// engine in flat.go must produce bit-identical Results, WorkCounts, and
// walk states; the differential tests in flat_test.go and the fuzz test
// enforce that against this reference.

// extendContigMapRef runs both side extensions for one contig with the map
// reference.
func extendContigMapRef(c *CtgWithReads, cfg *Config, wc *WorkCounts) Result {
	r := Result{ID: c.ID}

	if len(c.RightReads) > 0 {
		ext, state, iters := extendSideMapRef(c.Seq, c.RightReads, cfg, wc)
		r.RightExt, r.RightState = ext, state
		r.Iters += iters
	}
	if len(c.LeftReads) > 0 {
		rcSeq := dna.RevComp(c.Seq)
		rcReads := make([]dna.Read, len(c.LeftReads))
		for i := range c.LeftReads {
			rcReads[i] = c.LeftReads[i].RevComp()
		}
		ext, state, iters := extendSideMapRef(rcSeq, rcReads, cfg, wc)
		r.LeftExt, r.LeftState = dna.RevComp(ext), state
		r.Iters += iters
	}
	return r
}

// extendSideMapRef is the reference rightward extension: the §2.3 loop of
// build-table / walk / shift-k, growing the contig across iterations.
func extendSideMapRef(ctg []byte, reads []dna.Read, cfg *Config, wc *WorkCounts) ([]byte, WalkState, int) {
	tailLen := len(ctg)
	if tailLen > cfg.MaxMer {
		tailLen = cfg.MaxMer
	}
	buf := append([]byte(nil), ctg[len(ctg)-tailLen:]...)

	mer := cfg.StartMer
	if mer > tailLen {
		mer = tailLen
	}
	if mer < cfg.MinMer {
		return nil, WalkDeadEnd, 0
	}

	state := WalkDeadEnd
	shift := 0
	iters := 0
	for iter := 0; iter < cfg.MaxIters; iter++ {
		iters++
		table := buildTableMapRef(reads, mer, cfg.QualCutoff, wc)
		var steps int64
		state, steps = walkMapRef(&buf, tailLen, table, mer, cfg, wc)
		wc.WalkSteps += steps

		next, nextShift, done := nextMer(cfg, mer, shift, state)
		if done {
			break
		}
		if next > len(buf) { // mer cannot exceed the walk buffer
			break
		}
		mer, shift = next, nextShift
	}
	return buf[tailLen:], state, iters
}

// buildTableMapRef is Algorithm 1 with a Go map: key = k-mer string, value =
// extension object with quality-split counts of the following base.
func buildTableMapRef(reads []dna.Read, k, qualCutoff int, wc *WorkCounts) map[string]gpuht.Ext {
	wc.TableBuilds++
	table := make(map[string]gpuht.Ext)
	for ri := range reads {
		seq, qual := reads[ri].Seq, reads[ri].Qual
		for i := 0; i+k <= len(seq); i++ {
			wc.KmersInserted++
			key := string(seq[i : i+k])
			e := table[key]
			e.Count++
			if i+k < len(seq) {
				c, ok := dna.Code(seq[i+k])
				if ok {
					if dna.QualScore(qual[i+k]) >= qualCutoff {
						e.Hi[c]++
					} else {
						e.Lo[c]++
					}
				}
			}
			table[key] = e
		}
	}
	return table
}

// walkMapRef is Algorithm 2: slice the mer off the buffer end, look it up,
// append the decided base, repeat. The visited set implements loop_exists.
func walkMapRef(buf *[]byte, tailLen int, table map[string]gpuht.Ext, mer int, cfg *Config, wc *WorkCounts) (WalkState, int64) {
	visited := make(map[string]bool)
	steps := int64(0)
	for {
		if len(*buf)-tailLen >= cfg.MaxWalkLen {
			return WalkMaxLen, steps
		}
		cur := string((*buf)[len(*buf)-mer:])
		if visited[cur] {
			return WalkLoop, steps
		}
		visited[cur] = true

		wc.Lookups++
		e, ok := table[cur]
		if !ok {
			return WalkDeadEnd, steps
		}
		base, st := DecideExt(e, cfg.MinViableScore)
		switch st {
		case StepEnd:
			return WalkDeadEnd, steps
		case StepFork:
			return WalkFork, steps
		}
		*buf = append(*buf, dna.Alphabet[base])
		steps++
	}
}
