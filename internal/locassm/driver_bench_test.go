package locassm

import (
	"math/rand"
	"testing"

	"mhm2sim/internal/simt"
)

// benchBatch builds one representative batch (right side of a 40-contig
// workload) plus a slab region for it on a fresh device.
func benchBatch(b *testing.B) (*Driver, *batchPlan, simt.Region) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	ctgs := randomWorkload(rng, 40)
	d, err := NewDriver(testDev(), GPUConfig{Config: testConfig(), WarpPerTable: true})
	if err != nil {
		b.Fatal(err)
	}
	items := buildSideItems(ctgs, &d.Cfg.Config, false)
	batches, err := packBatches(items, &d.Cfg.Config, d.Cfg.MemBudget/pipelineStreams)
	if err != nil {
		b.Fatal(err)
	}
	batch := batches[0]
	slab, err := d.Dev.AllocRegion(batch.deviceBytes())
	if err != nil {
		b.Fatal(err)
	}
	return d, batch, slab
}

// BenchmarkDriverStaging compares the two host-staging strategies for one
// batch's inputs: the seed driver's one-MemcpyHtoD-per-read loop vs the
// pipelined driver's pack-into-arena + one copy per arena. The staged
// bytes are identical; only the copy structure differs.
func BenchmarkDriverStaging(b *testing.B) {
	b.Run("perread", func(b *testing.B) {
		d, batch, slab := benchBatch(b)
		bases := batch.bases(slab.Base)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range batch.items {
				for ri := range p.item.reads {
					d.Dev.MemcpyHtoD(bases.seqBase+simt.Ptr(p.readOffs[ri]), p.item.reads[ri].Seq)
					d.Dev.MemcpyHtoD(bases.qualBase+simt.Ptr(p.readOffs[ri]), p.item.reads[ri].Qual)
				}
				d.Dev.MemcpyHtoD(bases.walks+simt.Ptr(p.walkOff), p.item.tail)
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		d, batch, slab := benchBatch(b)
		bases := batch.bases(slab.Base)
		stream := d.Dev.NewStream()
		arena := arenaPool.Get().(*hostArena)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			arena.stage(batch)
			stream.MemcpyHtoD(bases.seqBase, arena.seq)
			stream.MemcpyHtoD(bases.qualBase, arena.qual)
			stream.MemcpyHtoD(bases.walks, arena.walks)
		}
	})
}

// BenchmarkDriverModes times full Run calls in both modes on one
// mixed workload (wall time of this repository's code, not model time).
func BenchmarkDriverModes(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	ctgs := randomWorkload(rng, 30)
	for _, bc := range []struct {
		name string
		mode DriverMode
	}{{"sequential", ModeSequential}, {"pipelined", ModePipelined}} {
		b.Run(bc.name, func(b *testing.B) {
			d, err := NewDriver(testDev(), GPUConfig{
				Config:       testConfig(),
				WarpPerTable: true,
				MemBudget:    1 << 20,
				Mode:         bc.mode,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Run(ctgs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
