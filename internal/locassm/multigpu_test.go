package locassm

import (
	"bytes"
	"math/rand"
	"testing"

	"mhm2sim/internal/simt"
)

func nodeDevCfg() simt.DeviceConfig {
	cfg := simt.V100()
	cfg.GlobalMemBytes = 1 << 28
	return cfg
}

func TestNodeDriverMatchesSingleGPU(t *testing.T) {
	rng := rand.New(rand.NewSource(8080))
	ctgs := randomWorkload(rng, 20)
	gcfg := GPUConfig{Config: testConfig(), WarpPerTable: true}

	single := newTestDriver(t, true, 0)
	want, err := single.Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}

	nd, err := NewNodeDriver(6, nodeDevCfg(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nd.Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ctgs {
		if !bytes.Equal(want.Results[i].LeftExt, got.Results[i].LeftExt) ||
			!bytes.Equal(want.Results[i].RightExt, got.Results[i].RightExt) {
			t.Fatalf("ctg %d: sharded run changed the result", i)
		}
	}
	if got.NodeTime <= 0 {
		t.Error("node time not positive")
	}
}

func TestNodeDriverBalancesLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(8081))
	// 24 similar contigs across 6 GPUs: each device should get ~4.
	var ctgs []*CtgWithReads
	for i := 0; i < 24; i++ {
		c, _ := makeCovered(rng, int64(i), 500, 150, 350, 70, 10)
		ctgs = append(ctgs, c)
	}
	nd, err := NewNodeDriver(6, nodeDevCfg(), GPUConfig{Config: testConfig(), WarpPerTable: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nd.Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}
	for g, r := range res.PerGPU {
		if len(r.Results) < 2 || len(r.Results) > 6 {
			t.Errorf("GPU %d got %d contigs, want ~4", g, len(r.Results))
		}
	}
	// Node time faster than a single device doing everything.
	single := newTestDriver(t, true, 0)
	all, err := single.Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeTime >= all.TotalTime() {
		t.Errorf("6 GPUs (%v) not faster than 1 (%v)", res.NodeTime, all.TotalTime())
	}
}

func TestNodeDriverValidation(t *testing.T) {
	if _, err := NewNodeDriver(0, nodeDevCfg(), GPUConfig{Config: testConfig()}); err == nil {
		t.Error("zero GPUs accepted")
	}
	if _, err := NewNodeDriver(2, nodeDevCfg(), GPUConfig{Config: Config{}}); err == nil {
		t.Error("invalid locassm config accepted")
	}
}

func TestNodeDriverEmptyWorkload(t *testing.T) {
	nd, err := NewNodeDriver(3, nodeDevCfg(), GPUConfig{Config: testConfig(), WarpPerTable: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nd.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 0 {
		t.Error("results from empty workload")
	}
}
