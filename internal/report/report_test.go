package report

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mhm2sim/internal/dbg"
	"mhm2sim/internal/gpucount"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/scaffold"
)

// fakeResult builds a small synthetic pipeline result (no pipeline run —
// the encoder only reads the result's fields).
func fakeResult() *pipeline.Result {
	res := &pipeline.Result{}
	for _, n := range []int{500, 300, 200, 100} {
		res.Contigs = append(res.Contigs, dbg.Contig{Seq: bytes.Repeat([]byte("A"), n)})
	}
	res.Scaffolds = []scaffold.Scaffold{{}, {}}
	res.Bins = []pipeline.RoundBins{{K: 21, Zero: 1, Small: 2, Large: 3}}
	return res
}

func TestComputeAssembly(t *testing.T) {
	st := ComputeAssembly(fakeResult())
	if st.Contigs != 4 || st.Bases != 1100 || st.Longest != 500 || st.Scaffolds != 2 {
		t.Fatalf("assembly summary: %+v", st)
	}
	// Running sum 500 < 550, 500+300 ≥ 550 → N50 = 300.
	if st.N50 != 300 {
		t.Errorf("N50 = %d, want 300", st.N50)
	}
	if len(st.Lens) != 4 || st.Lens[0] != 500 || st.Lens[3] != 100 {
		t.Errorf("Lens = %v", st.Lens)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := Build(fakeResult(), nil)
	if r.Schema != SchemaVersion {
		t.Fatalf("schema = %q", r.Schema)
	}
	path := filepath.Join(t.TempDir(), "result.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a := back.Assembly
	if back.Schema != SchemaVersion || a.Contigs != 4 || a.Bases != 1100 ||
		a.N50 != 300 || a.Longest != 500 || a.Scaffolds != 2 {
		t.Errorf("loaded report: %+v", back)
	}
	if len(back.Bins) != 1 || back.Bins[0].K != 21 {
		t.Errorf("bins: %+v", back.Bins)
	}
}

// TestReportKmerSection: the kmer section appears exactly when the run
// counted under a memory budget, and round-trips the budget counters.
func TestReportKmerSection(t *testing.T) {
	if r := Build(fakeResult(), nil); r.Kmer != nil {
		t.Fatal("kmer section present without a budget run")
	}
	res := fakeResult()
	res.Work.KmerBudget = gpucount.BudgetStats{
		Configured: 8 << 20, Effective: 4 << 20,
		Passes: 6, PlannedPasses: 3, SpillPasses: 3, OOMReplans: 1,
		FilteredSingletons: 1234, Inserted: 100, FPInserted: 5,
	}
	r := Build(res, nil)
	if r.Kmer == nil {
		t.Fatal("kmer section missing for a budget run")
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"passes":6`, `"filtered_singletons":1234`, `"filter_fp_rate":0.05`, `"oom_replans":1`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("serialized report missing %s", key)
		}
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kmer == nil || back.Kmer.Passes != 6 || back.Kmer.MemBudgetBytes != 8<<20 ||
		back.Kmer.EffectiveBytes != 4<<20 || back.Kmer.FilteredSingletons != 1234 {
		t.Errorf("kmer section did not round-trip: %+v", back.Kmer)
	}
}

// TestReportSchemaGate: Load refuses reports from another schema version,
// and the serialized form actually carries the schema field.
func TestReportSchemaGate(t *testing.T) {
	var buf bytes.Buffer
	if err := Build(fakeResult(), nil).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": "mhm2sim-report/v1"`) {
		t.Fatalf("schema field missing:\n%s", buf.String())
	}

	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	raw["schema"] = "mhm2sim-report/v999"
	b, _ := json.Marshal(raw)
	path := filepath.Join(t.TempDir(), "result.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema report accepted: %v", err)
	}
	// Lens must not leak into the serialized form (it is derived data).
	if strings.Contains(buf.String(), "Lens") || strings.Contains(buf.String(), "lens") {
		t.Error("Lens serialized")
	}
}
