// Package report is the one machine-readable run summary of this codebase:
// the schema behind `mhm2sim -json` and the daemon's result endpoint
// (internal/service). Both producers share this encoder so the two outputs
// cannot drift; the Schema field versions the format for consumers.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"mhm2sim/internal/dist"
	"mhm2sim/internal/pipeline"
)

// SchemaVersion identifies the report format. Bump the suffix on any
// incompatible change (renamed/removed fields, changed units).
const SchemaVersion = "mhm2sim-report/v1"

// Report is the machine-readable run summary. All durations are
// nanoseconds.
type Report struct {
	Schema   string           `json:"schema"`
	StagesNS map[string]int64 `json:"stages_ns"`
	TotalNS  int64            `json:"total_ns"`
	Assembly Assembly         `json:"assembly"`
	Bins     []Bins           `json:"bins"`
	GPU      *GPU             `json:"gpu,omitempty"`
	Kmer     *Kmer            `json:"kmer,omitempty"`
	Dist     *Dist            `json:"dist,omitempty"`
}

// Assembly summarizes the contig set (lengths sorted descending).
type Assembly struct {
	Contigs   int `json:"contigs"`
	Bases     int `json:"bases"`
	N50       int `json:"n50"`
	Longest   int `json:"longest"`
	Scaffolds int `json:"scaffolds"`
	// Lens holds the contig lengths, descending — for histograms, not
	// serialized.
	Lens []int `json:"-"`
}

// Bins is the §3.1 bin distribution of one contigging round (Fig 3).
type Bins struct {
	K     int `json:"k"`
	Zero  int `json:"bin1_zero"`
	Small int `json:"bin2_small"`
	Large int `json:"bin3_large"`
}

// GPU summarizes the device local-assembly kernels of the run.
type GPU struct {
	KernelTimeNS   int64 `json:"kernel_time_ns"`
	TransferTimeNS int64 `json:"transfer_time_ns"`
	Kernels        int   `json:"kernels"`
}

// Kmer summarizes memory-bounded k-mer counting (present only when the
// run had a -mem-budget): the pass plan, the Bloom prefilter's work and
// false-positive rate, and the degradation counters.
type Kmer struct {
	MemBudgetBytes     int64   `json:"mem_budget_bytes"`
	EffectiveBytes     int64   `json:"effective_budget_bytes"`
	Passes             int     `json:"passes"`
	PlannedPasses      int     `json:"planned_passes"`
	SpillPasses        int     `json:"spill_passes,omitempty"`
	SpillReplans       int     `json:"spill_replans,omitempty"`
	OOMReplans         int     `json:"oom_replans,omitempty"`
	FilteredSingletons int64   `json:"filtered_singletons"`
	Inserted           int64   `json:"inserted_kmers"`
	FilterFPRate       float64 `json:"filter_fp_rate"`
	TableBytes         int64   `json:"table_bytes"`
	BloomBytes         int64   `json:"bloom_bytes"`
	Kernels            int     `json:"kernels"`
	KernelTimeNS       int64   `json:"kernel_time_ns"`
}

// Dist is the per-rank comm/compute breakdown of a multi-rank run.
type Dist struct {
	Ranks int `json:"ranks"`
	// Capacity is the rank ID ceiling after scheduled joins (equal to
	// Ranks for a static run); per_rank has Capacity rows.
	Capacity      int    `json:"capacity,omitempty"`
	VirtualShards int    `json:"virtual_shards"`
	Rounds        int    `json:"rounds"`
	ShardPolicy   string `json:"shard_policy,omitempty"`
	// Components is the per-round connected-component count (component
	// policy only); ComponentPassNS the accumulated pass wall time.
	Components      []int `json:"components,omitempty"`
	ComponentPassNS int64 `json:"component_pass_ns,omitempty"`
	WallNS          int64 `json:"wall_ns"`
	CommTimeNS      int64 `json:"comm_time_ns"`
	// CommBytes is remote (wire) bytes; LocalBytes the rank-local bytes
	// that never left their rank; Locality = local/(local+remote).
	CommBytes  int64       `json:"comm_bytes"`
	LocalBytes int64       `json:"local_bytes"`
	Locality   float64     `json:"locality"`
	CommMsgs   int64       `json:"comm_msgs"`
	Efficiency float64     `json:"efficiency"`
	Faults     string      `json:"faults,omitempty"`
	Recovery   *Recovery   `json:"recovery,omitempty"`
	Elasticity *Elasticity `json:"elasticity,omitempty"`
	PerRank    []Rank      `json:"per_rank"`
	// Stages is the per-exchange local-vs-remote byte split in execution
	// order — the Fig 9-style comm breakdown.
	Stages []StageComm `json:"stages,omitempty"`
}

// StageComm is one fabric exchange's traffic split.
type StageComm struct {
	Stage       string  `json:"stage"`
	RemoteBytes int64   `json:"remote_bytes"`
	LocalBytes  int64   `json:"local_bytes"`
	Msgs        int64   `json:"msgs"`
	TimeNS      int64   `json:"time_ns"`
	Locality    float64 `json:"locality"`
}

// Recovery reports the fault-recovery counters of a chaos run.
type Recovery struct {
	ExchangeRetries int   `json:"exchange_retries"`
	RetryTimeNS     int64 `json:"retry_time_ns"`
	Evictions       int   `json:"evictions"`
	RecoveredBytes  int64 `json:"recovered_bytes"`
	DeviceFallbacks int   `json:"device_fallbacks"`
	BatchResplits   int   `json:"batch_resplits"`
	Stragglers      int   `json:"stragglers"`
	OOMReplans      int   `json:"oom_replans,omitempty"`
	SpillPasses     int   `json:"spill_passes,omitempty"`
}

// Elasticity reports the membership and work-stealing activity of an
// elastic run (emitted whenever the run changed membership or stole work).
type Elasticity struct {
	// Epochs counts membership versions (≥ 1); Joins the mid-run rank
	// admissions; EpochLive the live-rank count at each epoch.
	Epochs    int   `json:"epochs"`
	Joins     int   `json:"joins"`
	EpochLive []int `json:"epoch_live"`
	// Steals counts victim→thief flows; StolenBatches the tail batches
	// moved through them; StolenBytes / RebalancedBytes their payload and
	// the join bootstrap traffic.
	Steals          int   `json:"steals"`
	StolenBatches   int   `json:"stolen_batches"`
	StolenBytes     int64 `json:"stolen_bytes,omitempty"`
	RebalancedBytes int64 `json:"rebalanced_bytes,omitempty"`
	// NoStealWallNS / StealWallNS are the summed round makespans without
	// and with stealing; their ratio is the stealing speedup.
	NoStealWallNS int64 `json:"nosteal_wall_ns"`
	StealWallNS   int64 `json:"steal_wall_ns"`
}

// Rank is one rank's row of the strong-scaling breakdown.
type Rank struct {
	Rank  int  `json:"rank"`
	Alive bool `json:"alive"`
	// JoinedRound is the round an elastic rank joined at, -1 for initial
	// members.
	JoinedRound int   `json:"joined_round"`
	BusyNS      int64 `json:"busy_ns"`
	CommNS      int64 `json:"comm_ns"`
	IdleNS      int64 `json:"idle_ns"`
	BytesSent   int64 `json:"bytes_sent"`
	BytesRecv   int64 `json:"bytes_recv"`
	Msgs        int64 `json:"msgs"`
	PCIeH2D     int64 `json:"pcie_h2d_bytes"`
	PCIeD2H     int64 `json:"pcie_d2h_bytes"`
	Kernels     int   `json:"kernels"`
	Contigs     int   `json:"contigs"`
}

// ComputeAssembly derives the assembly summary from a pipeline result.
func ComputeAssembly(res *pipeline.Result) Assembly {
	st := Assembly{Contigs: len(res.Contigs), Scaffolds: len(res.Scaffolds)}
	st.Lens = make([]int, 0, len(res.Contigs))
	for _, c := range res.Contigs {
		st.Lens = append(st.Lens, len(c.Seq))
		st.Bases += len(c.Seq)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(st.Lens)))
	run := 0
	for _, l := range st.Lens {
		run += l
		if run >= st.Bases/2 {
			st.N50 = l
			break
		}
	}
	if len(st.Lens) > 0 {
		st.Longest = st.Lens[0]
	}
	return st
}

// Build assembles the report; rep may be nil (single-process run).
func Build(res *pipeline.Result, rep *dist.Report) *Report {
	r := &Report{
		Schema:   SchemaVersion,
		StagesNS: make(map[string]int64, int(pipeline.NumStages)),
		TotalNS:  int64(res.Timings.Total()),
		Assembly: ComputeAssembly(res),
	}
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		r.StagesNS[s.String()] = int64(res.Timings.Wall[s])
	}
	for _, b := range res.Bins {
		r.Bins = append(r.Bins, Bins{K: b.K, Zero: b.Zero, Small: b.Small, Large: b.Large})
	}
	if len(res.Work.GPUKernels) > 0 {
		r.GPU = &GPU{
			KernelTimeNS:   int64(res.Work.GPUKernelTime),
			TransferTimeNS: int64(res.Work.GPUTransferTime),
			Kernels:        len(res.Work.GPUKernels),
		}
	}
	if kb := res.Work.KmerBudget; kb.Passes > 0 {
		r.Kmer = &Kmer{
			MemBudgetBytes:     kb.Configured,
			EffectiveBytes:     kb.Effective,
			Passes:             kb.Passes,
			PlannedPasses:      kb.PlannedPasses,
			SpillPasses:        kb.SpillPasses,
			SpillReplans:       kb.SpillReplans,
			OOMReplans:         kb.OOMReplans,
			FilteredSingletons: kb.FilteredSingletons,
			Inserted:           kb.Inserted,
			FilterFPRate:       kb.FPRate(),
			TableBytes:         kb.TableBytes,
			BloomBytes:         kb.BloomBytes,
			Kernels:            kb.Kernels,
			KernelTimeNS:       int64(kb.KernelTime),
		}
	}
	if rep != nil {
		jd := &Dist{
			Ranks:           rep.Ranks,
			Capacity:        rep.Capacity,
			VirtualShards:   rep.VirtualShards,
			Rounds:          rep.Rounds,
			ShardPolicy:     rep.ShardPolicy,
			Components:      rep.Components,
			ComponentPassNS: int64(rep.ComponentPassTime),
			WallNS:          int64(rep.Wall),
			CommTimeNS:      int64(rep.CommTime),
			CommBytes:       res.Work.CommBytes,
			LocalBytes:      rep.LocalBytes(),
			Locality:        rep.Locality(),
			CommMsgs:        res.Work.CommMsgs,
			Efficiency:      rep.Efficiency(),
		}
		for i := range rep.Stages {
			st := &rep.Stages[i]
			jd.Stages = append(jd.Stages, StageComm{
				Stage:       st.Stage,
				RemoteBytes: st.TotalBytes(),
				LocalBytes:  st.TotalLocalBytes(),
				Msgs:        st.TotalMsgs(),
				TimeNS:      int64(st.Time),
				Locality:    st.Locality(),
			})
		}
		if rep.Recovery.Any() {
			jd.Faults = rep.Faults
			jd.Recovery = &Recovery{
				ExchangeRetries: rep.Recovery.ExchangeRetries,
				RetryTimeNS:     int64(rep.Recovery.RetryTime),
				Evictions:       rep.Recovery.Evictions,
				RecoveredBytes:  rep.Recovery.RecoveredBytes,
				DeviceFallbacks: rep.Recovery.DeviceFallbacks,
				BatchResplits:   rep.Recovery.BatchResplits,
				Stragglers:      rep.Recovery.Stragglers,
				OOMReplans:      rep.Recovery.OOMReplans,
				SpillPasses:     rep.Recovery.SpillPasses,
			}
		}
		if es := &rep.Elasticity; es.Any() {
			jd.Elasticity = &Elasticity{
				Epochs:          es.Epochs,
				Joins:           es.Joins,
				EpochLive:       es.EpochLive,
				Steals:          es.Steals,
				StolenBatches:   es.StolenBatches,
				StolenBytes:     es.StolenBytes,
				RebalancedBytes: es.RebalancedBytes,
				NoStealWallNS:   int64(es.NoStealWall),
				StealWallNS:     int64(es.StealWall),
			}
		}
		for _, rs := range rep.PerRank {
			jd.PerRank = append(jd.PerRank, Rank{
				Rank:        rs.Rank,
				Alive:       rs.Alive,
				JoinedRound: rs.JoinedRound,
				BusyNS:      int64(rs.Busy),
				CommNS:      int64(rs.Comm),
				IdleNS:      int64(rs.Idle),
				BytesSent:   rs.BytesSent,
				BytesRecv:   rs.BytesRecv,
				Msgs:        rs.Msgs,
				PCIeH2D:     rs.PCIeH2D,
				PCIeD2H:     rs.PCIeD2H,
				Kernels:     rs.Kernels,
				Contigs:     rs.Contigs,
			})
		}
		r.Dist = jd
	}
	return r
}

// Encode writes the report to w as indented JSON with a trailing newline.
func (r *Report) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteFile writes the report to path (atomically: write + rename).
func (r *Report) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a report back and checks the schema — the daemon uses this to
// serve persisted results without re-deriving them.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("report: corrupt %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("report: %s has schema %q, want %q", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}
