package roofline

import (
	"strings"
	"testing"
	"time"

	"mhm2sim/internal/simt"
)

func fakeResult(name string, warps, instrs, globalTx, localTx uint64, active uint64) simt.KernelResult {
	var k simt.KernelResult
	k.Kernel = name
	k.Warps = warps
	k.WarpInstrs[simt.IInt] = instrs / 2
	k.WarpInstrs[simt.ILdGlobal] = instrs / 4
	k.WarpInstrs[simt.ILdLocal] = instrs / 8
	k.WarpInstrs[simt.IFP] = instrs / 8
	for c := 0; c < simt.NumInstrClasses; c++ {
		k.ThreadInstrs[c] = k.WarpInstrs[c] * active
		k.PredicatedOff += k.WarpInstrs[c] * (32 - active)
	}
	k.GlobalSectors = globalTx
	k.LocalSectors = localTx
	k.MaxSerialMemChain = 1000
	k.Time = 10 * time.Millisecond
	k.Bound = "issue"
	return k
}

func TestAnalyzeBasics(t *testing.T) {
	cfg := simt.V100()
	k := fakeResult("v2", 100, 8_000_000, 500_000, 1_000_000, 16)
	a := Analyze(cfg, k)

	if a.Kernel != "v2" || a.Bound != "issue" {
		t.Error("metadata lost")
	}
	wantGIPS := float64(k.TotalWarpInstrs()) / 0.010 / 1e9
	if diff := a.WarpGIPS - wantGIPS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("GIPS %f, want %f", a.WarpGIPS, wantGIPS)
	}
	// Half the lanes active: non-predicated rate is half the issue rate.
	if ratio := a.NonPredWarpGIPS / a.WarpGIPS; ratio < 0.49 || ratio > 0.51 {
		t.Errorf("non-predicated ratio %f, want 0.5", ratio)
	}
	wantII := float64(k.TotalWarpInstrs()) / float64(k.L1Sectors())
	if diff := a.IntensityL1 - wantII; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("II %f, want %f", a.IntensityL1, wantII)
	}
	if a.PeakGIPS != cfg.PeakWarpGIPS() {
		t.Error("peak not propagated")
	}
	// 1M local of 1.5M total L1.
	if a.LocalSharePct < 66 || a.LocalSharePct > 67 {
		t.Errorf("local share %f", a.LocalSharePct)
	}
}

func TestAnalyzeZeroSafe(t *testing.T) {
	a := Analyze(simt.V100(), simt.KernelResult{})
	if a.WarpGIPS != 0 || a.IntensityL1 != 0 || a.IntensityGlobal != 0 {
		t.Error("zero kernel should produce zero metrics, not NaN/panic")
	}
}

func TestGroupBreakdown(t *testing.T) {
	k := fakeResult("x", 10, 800, 10, 10, 32)
	k.WarpInstrs[simt.IAtomic] = 7
	a := Analyze(simt.V100(), k)
	g := a.GroupBreakdown()
	if g["global_memory_inst"] != 200+7 {
		t.Errorf("global group %d, want 207", g["global_memory_inst"])
	}
	if g["local_memory_inst"] != 100 {
		t.Errorf("local group %d", g["local_memory_inst"])
	}
	if g["fp_inst"] != 100 {
		t.Errorf("fp group %d", g["fp_inst"])
	}
	if g["int_inst"] != 400 {
		t.Errorf("int group %d", g["int_inst"])
	}
}

func TestTables(t *testing.T) {
	cfg := simt.V100()
	as := []Analysis{
		Analyze(cfg, fakeResult("v1", 10, 1000, 100, 300, 1)),
		Analyze(cfg, fakeResult("v2", 10, 600, 40, 300, 24)),
	}
	tab := Table(as)
	if !strings.Contains(tab, "v1") || !strings.Contains(tab, "v2") ||
		!strings.Contains(tab, "489.6") {
		t.Errorf("table missing content:\n%s", tab)
	}
	bt := BreakdownTable(as)
	if !strings.Contains(bt, "global_memory_inst") {
		t.Errorf("breakdown missing groups:\n%s", bt)
	}
}

func TestMerge(t *testing.T) {
	cfg := simt.V100()
	ks := []simt.KernelResult{
		fakeResult("a", 10, 1000, 100, 50, 16),
		fakeResult("a", 20, 2000, 200, 100, 16),
	}
	m := Merge("a_all", cfg, ks)
	if m.Warps != 30 {
		t.Errorf("merged warps %d", m.Warps)
	}
	if m.TotalWarpInstrs() != ks[0].TotalWarpInstrs()+ks[1].TotalWarpInstrs() {
		t.Error("instrs not summed")
	}
	if m.Time != 20*time.Millisecond {
		t.Errorf("time %v", m.Time)
	}
	if m.Bound == "" {
		t.Error("bound not recomputed")
	}
}

func TestSortByName(t *testing.T) {
	as := []Analysis{{Kernel: "z"}, {Kernel: "a"}}
	SortByName(as)
	if as[0].Kernel != "a" {
		t.Error("not sorted")
	}
}
