// Package roofline implements the Instruction Roofline model of Ding &
// Williams (PMBS'19), the methodology behind the paper's Figs 8–10: kernel
// performance in billions of warp instructions per second (GIPS) against
// instruction intensity (warp instructions per memory transaction), with
// the theoretical issue peak, memory walls for characteristic access
// patterns, and the thread-predication gap.
package roofline

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mhm2sim/internal/simt"
)

// Analysis is the roofline characterization of one kernel.
type Analysis struct {
	Kernel string
	Time   time.Duration
	Bound  string

	// WarpGIPS is achieved performance: executed warp instructions per
	// second (the solid dot). NonPredWarpGIPS is where the dot would sit
	// if every lane slot did useful work (the dashed line of Figs 8–9);
	// the gap between the two is thread predication.
	WarpGIPS        float64
	NonPredWarpGIPS float64

	// IntensityL1 is total warp instructions per L1 transaction (the
	// solid-dot x position). IntensityGlobal is global load/store warp
	// instructions per global transaction (the open "ldst_inst" dot).
	IntensityL1     float64
	IntensityGlobal float64

	// PredicationRatio is active-lane slots over total lane slots.
	PredicationRatio float64

	// Transactions by space, and local memory's share of L1 traffic
	// (§4.2 reports ≈70% for these kernels).
	GlobalTx, LocalTx, AtomicTx uint64
	LocalSharePct               float64

	// Breakdown is warp instructions by class (Fig 10).
	Breakdown map[string]uint64

	// Ceilings.
	PeakGIPS float64
	// Stride1WallII / Stride8WallII are the intensities of perfectly
	// coalesced 8-byte unit-stride accesses (8 sectors per warp ldst) and
	// of fully divergent accesses (32 sectors per warp ldst).
	Stride1WallII float64
	Stride8WallII float64
}

// Analyze characterizes one kernel result under the device configuration.
func Analyze(cfg simt.DeviceConfig, k simt.KernelResult) Analysis {
	a := Analysis{
		Kernel:        k.Kernel,
		Time:          k.Time,
		Bound:         k.Bound,
		PeakGIPS:      cfg.PeakWarpGIPS(),
		Stride1WallII: 1.0 / 8,
		Stride8WallII: 1.0 / 32,
	}
	secs := k.Time.Seconds()
	warp := float64(k.TotalWarpInstrs())
	if secs > 0 {
		a.WarpGIPS = warp / secs / 1e9
		// Non-predicated rate: only lane slots doing real work count
		// (thread instructions / 32). The gap below WarpGIPS is the
		// thread-predication loss Figs 8–9 visualize.
		a.NonPredWarpGIPS = float64(k.TotalThreadInstrs()) / float64(simt.WarpSize) / secs / 1e9
	}
	if l1 := k.L1Sectors(); l1 > 0 {
		a.IntensityL1 = warp / float64(l1)
	}
	gInst, _ := k.MemWarpInstrs()
	if k.GlobalSectors+k.AtomicSectors > 0 {
		a.IntensityGlobal = float64(gInst) / float64(k.GlobalSectors+k.AtomicSectors)
	}
	a.PredicationRatio = k.NonPredicatedRatio()
	a.GlobalTx, a.LocalTx, a.AtomicTx = k.GlobalSectors, k.LocalSectors, k.AtomicSectors
	if l1 := k.L1Sectors(); l1 > 0 {
		a.LocalSharePct = 100 * float64(k.LocalSectors) / float64(l1)
	}
	a.Breakdown = map[string]uint64{}
	for c := 0; c < simt.NumInstrClasses; c++ {
		if k.WarpInstrs[c] > 0 {
			a.Breakdown[simt.InstrClass(c).String()] = k.WarpInstrs[c]
		}
	}
	return a
}

// GroupBreakdown folds the per-class counts into Fig 10's four groups:
// global memory, local memory, FP, and INT (everything else integer-ish:
// control, intrinsics, atomics count as integer pipeline work except the
// memory classes).
func (a Analysis) GroupBreakdown() map[string]uint64 {
	g := map[string]uint64{}
	for name, n := range a.Breakdown {
		switch name {
		case "ld.global", "st.global", "atomic":
			g["global_memory_inst"] += n
		case "ld.local", "st.local":
			g["local_memory_inst"] += n
		case "fp":
			g["fp_inst"] += n
		default:
			g["int_inst"] += n
		}
	}
	return g
}

// Table renders analyses as an aligned text table.
func Table(as []Analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %10s %8s %9s %9s %9s %8s %8s %9s\n",
		"kernel", "time", "bound", "GIPS", "noPred", "II(L1)", "II(gbl)", "pred%", "local%")
	for _, a := range as {
		fmt.Fprintf(&b, "%-26s %10s %8s %9.3f %9.3f %9.4f %8.4f %8.1f %9.1f\n",
			a.Kernel, a.Time.Round(time.Microsecond), a.Bound,
			a.WarpGIPS, a.NonPredWarpGIPS, a.IntensityL1, a.IntensityGlobal,
			100*a.PredicationRatio, a.LocalSharePct)
	}
	fmt.Fprintf(&b, "ceilings: peak %.1f warp GIPS; stride-1 wall II=%.4f; divergent wall II=%.4f\n",
		as[0].PeakGIPS, as[0].Stride1WallII, as[0].Stride8WallII)
	return b.String()
}

// BreakdownTable renders Fig 10's grouped instruction counts for several
// kernels side by side.
func BreakdownTable(as []Analysis) string {
	groups := []string{"global_memory_inst", "local_memory_inst", "fp_inst", "int_inst"}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "group")
	for _, a := range as {
		fmt.Fprintf(&b, " %16s", a.Kernel)
	}
	b.WriteByte('\n')
	for _, g := range groups {
		fmt.Fprintf(&b, "%-22s", g)
		for _, a := range as {
			fmt.Fprintf(&b, " %16d", a.GroupBreakdown()[g])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Merge aggregates several kernel results (e.g., all batches of one kernel
// version) into a single result for analysis.
func Merge(name string, cfg simt.DeviceConfig, ks []simt.KernelResult) simt.KernelResult {
	var out simt.KernelResult
	out.Kernel = name
	for i := range ks {
		out.Stats.Add(&ks[i].Stats)
		out.Time += ks[i].Time
	}
	_, out.Bound = simt.TimeFor(cfg, &out.Stats)
	return out
}

// SortByName orders analyses deterministically.
func SortByName(as []Analysis) {
	sort.Slice(as, func(i, j int) bool { return as[i].Kernel < as[j].Kernel })
}
