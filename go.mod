module mhm2sim

go 1.22
