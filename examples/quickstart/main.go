// Quickstart: assemble a small synthetic metagenome end-to-end with the
// public pipeline API — generate a community, sample paired-end reads, run
// the MetaHipMer2-like pipeline with GPU-accelerated local assembly, and
// print the assembly plus the stage breakdown.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mhm2sim/internal/locassm"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/synth"
)

func main() {
	// 1. A small community: four genomes with skewed abundances.
	com, err := synth.GenerateCommunity(synth.Config{
		NumGenomes:     4,
		MinGenomeLen:   8_000,
		MaxGenomeLen:   15_000,
		AbundanceSigma: 0.7,
		RepeatFrac:     0.02,
		SharedFrac:     0.02,
		RepeatLen:      300,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community: %d genomes, %d bases\n", len(com.Genomes), com.TotalBases())

	// 2. Illumina-like paired-end reads at ~15x mean coverage.
	pairs, err := synth.SampleReads(com, synth.ReadConfig{
		ReadLen:     150,
		InsertMean:  350,
		InsertSD:    40,
		Depth:       15,
		ErrorRate:   0.004,
		LowQualFrac: 0.05,
	}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reads: %d pairs\n", len(pairs))

	// 3. Assemble: two contigging rounds, GPU local assembly on the
	// simulated V100 (engine selection via the unified registry).
	cfg := pipeline.DefaultConfig()
	cfg.Rounds = []int{21, 33}
	cfg.Engine.Name = locassm.EngineGPU
	res, err := pipeline.Run(pairs, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Results.
	longest, total := 0, 0
	for _, c := range res.Contigs {
		total += len(c.Seq)
		if len(c.Seq) > longest {
			longest = len(c.Seq)
		}
	}
	fmt.Printf("\nassembly: %d contigs (%d bases, longest %d), %d scaffolds\n",
		len(res.Contigs), total, longest, len(res.Scaffolds))

	fmt.Println("\nstage breakdown:")
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		fmt.Printf("  %-18s %v\n", s, res.Timings.Wall[s].Round(1e6))
	}
	fmt.Printf("\nGPU local assembly: %d kernel launches, model time %v\n",
		len(res.Work.GPUKernels), res.Work.GPUKernelTime.Round(1e3))
}
