// Local-assembly example: drive the paper's core module directly. A contig
// is cut out of a hidden genome, reads tiling past its ends become the
// candidate reads, and the module extends the contig back toward the truth
// — once with the CPU reference (Algorithms 1-2) and once with the GPU v2
// warp-per-table kernel (§3.3-3.4), verifying that the two walks are
// bit-identical.
//
// Run with: go run ./examples/localassembly
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/simt"
)

func main() {
	rng := rand.New(rand.NewSource(2021))

	// Hidden truth: a 2 kb genome. The contig is the middle 800 bases.
	genome := make([]byte, 2000)
	for i := range genome {
		genome[i] = dna.Alphabet[rng.Intn(4)]
	}
	ctg := &locassm.CtgWithReads{ID: 1, Seq: append([]byte(nil), genome[600:1400]...)}

	// Candidate reads: 120-mers tiling across both contig ends.
	addReads := func(from, to int, dst *[]dna.Read) {
		for pos := from; pos+120 <= to; pos += 12 {
			q := bytes.Repeat([]byte{dna.QualChar(35)}, 120)
			*dst = append(*dst, dna.Read{
				ID:   fmt.Sprintf("r%d", pos),
				Seq:  append([]byte(nil), genome[pos:pos+120]...),
				Qual: q,
			})
		}
	}
	addReads(1300, 2000, &ctg.RightReads) // overlap right end, extend beyond
	addReads(0, 700, &ctg.LeftReads)      // overlap left end
	fmt.Printf("contig: %d bases; candidate reads: %d left, %d right\n",
		len(ctg.Seq), len(ctg.LeftReads), len(ctg.RightReads))

	cfg := locassm.DefaultConfig()

	// CPU reference.
	cpu, err := locassm.RunCPU([]*locassm.CtgWithReads{ctg}, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	r := cpu.Results[0]
	fmt.Printf("\nCPU: +%d bases left (%s), +%d bases right (%s), %d table builds\n",
		len(r.LeftExt), r.LeftState, len(r.RightExt), r.RightState, r.Iters)

	// GPU v2 kernel on a simulated V100.
	dev := simt.NewDevice(simt.V100())
	drv, err := locassm.NewDriver(dev, locassm.GPUConfig{Config: cfg, WarpPerTable: true})
	if err != nil {
		log.Fatal(err)
	}
	gpu, err := drv.Run([]*locassm.CtgWithReads{ctg})
	if err != nil {
		log.Fatal(err)
	}
	g := gpu.Results[0]
	fmt.Printf("GPU: +%d bases left (%s), +%d bases right (%s); kernel model time %v\n",
		len(g.LeftExt), g.LeftState, len(g.RightExt), g.RightState, gpu.KernelTime.Round(1e3))

	if !bytes.Equal(r.LeftExt, g.LeftExt) || !bytes.Equal(r.RightExt, g.RightExt) {
		log.Fatal("CPU and GPU walks diverge!")
	}
	fmt.Println("\nCPU and GPU extensions are bit-identical ✓")

	// Verify against the hidden genome.
	extended := r.ExtendedSeq(ctg.Seq)
	want := genome[600-len(r.LeftExt) : 1400+len(r.RightExt)]
	if bytes.Equal(extended, want) {
		fmt.Printf("extensions match the hidden genome exactly: contig grew %d -> %d bases ✓\n",
			len(ctg.Seq), len(extended))
	} else {
		fmt.Println("extensions diverge from the hidden genome (ambiguous region)")
	}
}
