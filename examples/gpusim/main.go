// GPU-simulator example: program the simt substrate directly, the way the
// local-assembly kernels do. The kernel below builds a base-composition
// histogram of a DNA sequence with warp-cooperative loads, a ballot vote,
// and atomic adds, then the host reads the result and the kernel's
// instruction-roofline characterization.
//
// Run with: go run ./examples/gpusim
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/roofline"
	"mhm2sim/internal/simt"
)

func main() {
	dev := simt.NewDevice(simt.V100())

	// Stage a random DNA sequence in device memory.
	rng := rand.New(rand.NewSource(5))
	seq := make([]byte, 1<<16)
	for i := range seq {
		seq[i] = dna.Alphabet[rng.Intn(4)]
	}
	seqPtr, err := dev.Malloc(int64(len(seq) + 8))
	if err != nil {
		log.Fatal(err)
	}
	dev.MemcpyHtoD(seqPtr, seq)

	histPtr, err := dev.Malloc(4 * 8)
	if err != nil {
		log.Fatal(err)
	}

	// One warp per 4 KiB block; lanes stride the block with coalesced
	// 1-byte loads and vote on G/C content before updating the global
	// histogram atomically.
	const bytesPerWarp = 4096
	warps := len(seq) / bytesPerWarp
	res, err := dev.Launch(simt.KernelConfig{Name: "basehist", Warps: warps}, func(w *simt.Warp) {
		base := uint64(seqPtr) + uint64(w.ID*bytesPerWarp)
		var local [4]uint64
		for off := 0; off < bytesPerWarp; off += simt.WarpSize {
			var addrs simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				addrs[lane] = base + uint64(off+lane)
			}
			vals := w.LoadGlobal(simt.FullMask, &addrs, 1)
			// Ballot: which lanes hold G or C? (a warp-wide vote, like the
			// walk-state broadcast in the extension kernel)
			gc := w.Ballot(simt.FullMask, func(lane int) bool {
				b := byte(vals[lane])
				return b == 'G' || b == 'C'
			})
			_ = gc
			w.ExecN(simt.IInt, simt.FullMask, 2)
			for lane := 0; lane < simt.WarpSize; lane++ {
				c, _ := dna.Code(byte(vals[lane]))
				local[c]++
			}
		}
		// Flush the warp-private counts with four atomic adds from lane 0.
		for c := 0; c < 4; c++ {
			var addrs, delta simt.Vec
			addrs[0] = uint64(histPtr) + uint64(8*c)
			delta[0] = local[c]
			w.AtomicAdd(simt.LaneMask(0), &addrs, &delta, 8)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("histogram of %d bases across %d warps:\n", len(seq), warps)
	total := uint64(0)
	for c := 0; c < 4; c++ {
		n := dev.ReadU64(histPtr + simt.Ptr(8*c))
		total += n
		fmt.Printf("  %c: %d\n", dna.Alphabet[c], n)
	}
	fmt.Printf("  total %d ✓\n", total)

	a := roofline.Analyze(dev.Cfg, res)
	fmt.Printf("\nkernel characterization (instruction roofline):\n")
	fmt.Printf("  model time        %v (%s bound)\n", res.Time.Round(1e3), res.Bound)
	fmt.Printf("  warp GIPS         %.2f of %.1f peak\n", a.WarpGIPS, a.PeakGIPS)
	fmt.Printf("  intensity (L1)    %.4f warp instructions / transaction\n", a.IntensityL1)
	fmt.Printf("  predication       %.1f%% of lane slots active\n", 100*a.PredicationRatio)
	fmt.Printf("  global sectors    %d (coalesced 1B loads: 128 bytes -> 4 sectors per warp load)\n",
		res.GlobalSectors)
}
