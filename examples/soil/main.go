// Soil example: demonstrate component-partitioned sharding on the
// workload it was built for — a many-organism "soil metagenome" community
// whose de Bruijn graph decomposes into disconnected components, roughly
// one per organism.
//
// The example runs the same 8-rank distributed assembly twice, once under
// the classic contig-ID-hash shard map and once with `-shard component`
// semantics (whole components co-located via affinity-aware LPT packing),
// verifies the two assemblies are bit-identical, and prints the per-stage
// local-vs-remote traffic split showing the remote comm-volume drop.
//
// Run with: go run ./examples/soil
package main

import (
	"fmt"
	"log"
	"reflect"
	"strings"

	"mhm2sim/internal/dist"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/synth"
)

const ranks = 8

func run(pairs []dna.PairedRead, policy string) (*pipeline.Result, *dist.Report) {
	cfg := dist.DefaultConfig(ranks)
	cfg.ShardPolicy = policy
	cfg.CPUAssembly = true
	res, rep, err := dist.Run(pairs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res, rep
}

// relevant sums the remote bytes of the stages the shard map controls: the
// per-round read exchange and contig allgather (the initial read scatter is
// policy-independent).
func relevant(rep *dist.Report) (remote, local int64) {
	for i := range rep.Stages {
		st := &rep.Stages[i]
		if strings.HasPrefix(st.Stage, "read exchange") || strings.HasPrefix(st.Stage, "contig allgather") {
			remote += st.TotalBytes()
			local += st.TotalLocalBytes()
		}
	}
	return remote, local
}

func main() {
	preset := synth.SoilPreset()
	com, pairs, err := preset.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("soil community: %d organisms, %d read pairs\n\n", len(com.Genomes), len(pairs))

	fmt.Printf("running %d-rank assembly under -shard hash...\n", ranks)
	hashRes, hashRep := run(pairs, dist.ShardHash)
	fmt.Printf("running %d-rank assembly under -shard component...\n\n", ranks)
	compRes, compRep := run(pairs, dist.ShardComponent)

	if !reflect.DeepEqual(hashRes.Contigs, compRes.Contigs) ||
		!reflect.DeepEqual(hashRes.Scaffolds, compRes.Scaffolds) {
		log.Fatal("shard policies produced different assemblies — determinism broken")
	}
	fmt.Printf("assemblies bit-identical: %d contigs, %d scaffolds under both shard maps\n\n",
		len(hashRes.Contigs), len(hashRes.Scaffolds))

	fmt.Printf("components per round: %v (pass time %v)\n\n",
		compRep.Components, compRep.ComponentPassTime.Round(1e6))

	hr, hl := relevant(hashRep)
	cr, cl := relevant(compRep)
	fmt.Printf("%-12s %14s %14s %10s\n", "shard map", "remote bytes", "local bytes", "locality")
	fmt.Printf("%-12s %14d %14d %9.1f%%\n", dist.ShardHash, hr, hl, 100*float64(hl)/float64(hl+hr))
	fmt.Printf("%-12s %14d %14d %9.1f%%\n", dist.ShardComponent, cr, cl, 100*float64(cl)/float64(cl+cr))
	fmt.Printf("\nremote exchange+allgather reduction: %.1fx\n", float64(hr)/float64(cr))
}
