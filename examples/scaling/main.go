// Scaling example: reproduce the paper's Summit strong-scaling results
// (Figs 13 and 14) from first principles — run the pipeline on a scaled WA
// community, measure the local-assembly module under both implementations,
// calibrate the cluster model to the two published endpoints, and print
// the full node sweep with the intermediate points as model predictions.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"mhm2sim/internal/figures"
)

func main() {
	setup, err := figures.QuickSetup("WA")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running the pipeline on the scaled WA community...")
	res, err := setup.Run(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local-assembly workload: %d contigs\n\n", len(res.LAWorkload))

	// Measure CPU + GPU local assembly on the workload and calibrate the
	// Summit model against the published 64-node (7.2x) and 1024-node
	// (2.65x) speedups; everything in between is a prediction.
	m, f64, err := figures.Model(res, setup.Config.Locassm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated: one 64-node share = %.1f base workloads; CPU cost model %+v\n\n",
		f64, m.CPUCost)

	fmt.Println(figures.Fig13(m, f64))
	fmt.Println(figures.Fig14(m, f64))
}
