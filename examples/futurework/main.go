// Future-work example: the paper's conclusion plans to offload more of
// MetaHipMer to GPUs. This example runs the two prototypes this repository
// implements on the simulated V100 and verifies both against their CPU
// references:
//
//   - gpucount: the k-mer analysis stage on a device-wide hash table
//     ("distributed data structures" on the GPU), and
//   - gpualign: the ADEPT-role batched banded Smith-Waterman kernel the
//     alignment stage uses ("aln kernel").
//
// Run with: go run ./examples/futurework
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mhm2sim/internal/align"
	"mhm2sim/internal/dbg"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/gpualign"
	"mhm2sim/internal/gpucount"
	"mhm2sim/internal/kmer"
	"mhm2sim/internal/simt"
)

func main() {
	rng := rand.New(rand.NewSource(2026))
	genome := make([]byte, 5000)
	for i := range genome {
		genome[i] = dna.Alphabet[rng.Intn(4)]
	}
	var reads [][]byte
	for pos := 0; pos+120 <= len(genome); pos += 9 {
		reads = append(reads, genome[pos:pos+120])
	}
	fmt.Printf("input: %d reads of 120 bp\n\n", len(reads))

	// ---- GPU k-mer counting ----
	k := 21
	dev := simt.NewDevice(simt.V100())
	gpuTable, kres, err := gpucount.Count(dev, reads, k)
	if err != nil {
		log.Fatal(err)
	}
	cpuTable, err := dbg.Count(reads, dbg.Config{K: k, MinCount: 1})
	if err != nil {
		log.Fatal(err)
	}
	mismatch := 0
	for _, r := range reads {
		kmer.ForEach(r, k, func(pos int, km kmer.Kmer) {
			canon, _ := km.Canonical(k)
			info, _, ok := cpuTable.Lookup(km)
			g := gpuTable[canon.W[0]]
			if !ok || g == nil || g.Count != info.Count {
				mismatch++
			}
		})
	}
	fmt.Printf("GPU k-mer analysis (k=%d): %d distinct canonical k-mers\n", k, len(gpuTable))
	fmt.Printf("  kernel: %d warp instructions, model time %v (%s bound)\n",
		kres.TotalWarpInstrs(), kres.Time.Round(1e3), kres.Bound)
	fmt.Printf("  matches the CPU table: %v (%d mismatching occurrences)\n\n", mismatch == 0, mismatch)

	// ---- GPU batched alignment (ADEPT role) ----
	sc := align.DefaultScoring()
	band := 8
	var tasks []gpualign.Task
	for i := 0; i < 64; i++ {
		start := rng.Intn(len(genome) - 400)
		tgt := genome[start : start+400]
		q := append([]byte(nil), tgt[100:260]...)
		// A couple of sequencing errors.
		for _, p := range []int{40, 90} {
			c, _ := dna.Code(q[p])
			q[p] = dna.Alphabet[(c+1)&3]
		}
		tasks = append(tasks, gpualign.Task{Q: q, T: tgt, Shift: 100})
	}
	dev2 := simt.NewDevice(simt.V100())
	results, ares, err := gpualign.BatchSW(dev2, tasks, band, sc)
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	for i, task := range tasks {
		want := align.BandedSW(task.Q, task.T, task.Shift, band, sc)
		if results[i].Score == want.Score {
			agree++
		}
	}
	fmt.Printf("GPU aln kernel: %d alignments in one launch\n", len(tasks))
	fmt.Printf("  kernel: %d warp instructions, model time %v (%s bound)\n",
		ares.TotalWarpInstrs(), ares.Time.Round(1e3), ares.Bound)
	fmt.Printf("  scores identical to CPU banded SW: %d/%d\n", agree, len(tasks))
}
