// Package mhm2sim is a pure-Go reproduction of "Accelerating Large Scale
// de novo Metagenome Assembly Using GPUs" (Awan et al., SC '21): the
// GPU-accelerated local-assembly module of MetaHipMer, implemented on a
// simulated SIMT device, together with every substrate the paper depends
// on — the assembler pipeline, a synthetic-community read generator, an
// instruction-roofline analyzer, and a Summit strong-scaling model.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every evaluation figure.
package mhm2sim
